(** Minimization of the maximum weighted flow in the divisible-load model
    (Section 4.3 of the paper, Theorem 2).

    The algorithm is the paper's: enumerate the milestones (O(n²) objective
    values at which the relative order of release dates and parametric
    deadlines changes), binary-search for the first feasible one using the
    deadline-scheduling LP of Lemma 1, then solve the parametric system (3)
    on the bracketing milestone-free range, with the objective [F] itself as
    an LP variable.  Everything runs on exact rationals, so the returned
    objective is the exact optimum. *)

module Rat = Numeric.Rat

type result = {
  objective : Rat.t;  (** optimal maximum weighted flow [F*] *)
  schedule : Schedule.t;  (** a schedule achieving it *)
  milestones : Rat.t list;  (** the milestones that were enumerated *)
  search_range : Rat.t * Rat.t;
      (** the milestone-free range on which the parametric LP found [F*] *)
}

val solve : ?accelerate:bool -> ?cache:Lp.Solve.cache -> Instance.t -> result
(** [accelerate] (default [true]) drives the milestone binary search with
    the float LP, certified exactly ({!Flow_search}); [false] uses exact
    feasibility tests throughout.  [cache] shares a warm-start basis cache
    across calls (see {!Deadline.prober}); probes are warm-started either
    way, but the final parametric solve is always cold.  The result is
    identical in all configurations.
    @raise Invalid_argument on an empty instance. *)

val solve_total :
  ?accelerate:bool ->
  ?cache:Lp.Solve.cache ->
  Instance.t ->
  [ `Solved of result | `Trivial of Schedule.t ]
(** Total variant of {!solve}: the empty instance (no jobs) yields
    [`Trivial] with an empty schedule instead of raising.  Never raises on
    a well-formed {!Instance.t}. *)

val solve_max_stretch : Instance.t -> result
(** Maximum stretch as the particular case of maximum weighted flow with
    [w_j = 1 / fastest_cost j] (Section 3).  The returned schedule is for
    the reweighted instance, which differs from the input only in weights. *)

val feasible_upper_bound : Instance.t -> Rat.t
(** Weighted flow of a trivial serial schedule (jobs in release order, each
    run entirely on its fastest machine): a finite feasible objective that
    seeds the milestone search. *)

val solve_bisection : ?epsilon:Rat.t -> Instance.t -> result
(** The naive approach the paper contrasts with in Section 4.3.1: plain
    bisection on the objective value, which "is not guaranteed to terminate"
    at the exact optimum and must settle for a precision bound.  Stops when
    the bracket satisfies [hi - lo <= epsilon·hi] (default
    [epsilon = 2^-20]) and returns the feasible upper end: the result is
    within a factor [1 + epsilon] of optimal, never below it.  Provided as
    the comparison baseline for the exact milestone algorithm (see the
    [search] bench). *)
