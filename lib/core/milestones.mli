(** Milestones of the parametric deadline system (Section 4.3.2).

    A milestone is a value of the objective [F] at which the relative order
    of the epochal times [{r_1, …, r_n, d̄_1(F), …, d̄_n(F)}] changes: a
    deadline function [d̄_j(F) = r_j + F/w_j] crosses a release date or
    another deadline function.  Labetoulle, Lawler, Lenstra and Rinnooy Kan
    call these "critical trial values".  There are at most [n² − n] of
    them. *)

module Rat = Numeric.Rat

val compute : Instance.t -> Rat.t list
(** Strictly positive milestones, sorted increasing, without duplicates. *)

val count_bound : Instance.t -> int
(** The paper's bound [n² − n] (used by tests and the bench report). *)

val candidates : ?milestones:Rat.t list -> Instance.t -> upper:Rat.t -> Rat.t array
(** Milestones strictly below [upper] (a known-feasible objective, e.g.
    the serial schedule's), with [upper] appended as a feasible sentinel —
    the candidate array fed to {!Flow_search.first_feasible}.  Pass
    [?milestones] to reuse an already-computed {!compute} result. *)
