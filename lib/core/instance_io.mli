(** Textual instance format, for the command-line tools.

    The format is line-oriented; blank lines and [#] comments are ignored:

    {v
    machines 3
    # job <release> <weight> <cost on M0> <cost on M1> <cost on M2>
    job 0    1    6  12  inf
    job 5/2  2    inf 4  8
    v}

    Costs are rationals ([3], [7/2], [1.25]) or [inf] when the machine
    cannot process the job (databank absent).  Release dates and weights
    are rationals; weights must be positive.

    An optional [origin <job-index> <rational>] line (after the job lines)
    overrides that job's flow origin when it differs from its release
    date; jobs without one measure flow from their release. *)

val of_string : string -> Instance.t
(** @raise Invalid_argument with a line-numbered message on syntax or
    semantic errors. *)

val to_string : Instance.t -> string
(** Round-trips through {!of_string}. *)

val load : string -> Instance.t
(** Read an instance from a file path. *)

val save : string -> Instance.t -> unit
