(** The differential-oracle matrix.

    Each oracle runs one generated case through two independent paths of
    the codebase and demands bit-identical answers (different simplex
    engines, float-guided vs exact probing, parallel vs serial, live vs
    crash-resumed) or dominance-consistent ones (preemptive vs divisible
    relaxation, online policies vs the offline optimum).  [aux] is a
    deterministic per-case integer the driver supplies; oracles use it to
    pick secondary knobs (crash index, snapshot cadence, cache arming) so
    a case replays identically during shrinking. *)

type outcome = Pass | Fail of string

type t =
  | Offline of string * (aux:int -> Sched_core.Instance.t -> outcome)
      (** runs on a generated offline instance *)
  | Serve of string * (aux:int -> Gen.script -> outcome)
      (** runs on a generated serve script *)

val name : t -> string
val all : t list
val find : string -> t option

val run_offline : t -> aux:int -> Sched_core.Instance.t -> outcome
(** Applies an [Offline] oracle; exceptions become [Fail].  [Serve]
    oracles pass vacuously, and vice versa for {!run_serve}. *)

val run_serve : t -> aux:int -> Gen.script -> outcome
