(** Greedy minimization of failing cases.

    [keep] is the failure predicate — "this candidate still fails the
    oracle".  Shrinking deletes one job, machine or script op at a time,
    keeps any deletion under which the failure survives, and repeats to a
    fixpoint, so the reported repro is locally minimal: removing any
    single element makes the failure disappear. *)

val instance :
  keep:(Sched_core.Instance.t -> bool) -> Sched_core.Instance.t -> Sched_core.Instance.t
(** Greedy job deletion, then machine deletion (skipping deletions that
    would strand a job with no runnable machine), to a fixpoint. *)

val script : keep:(Gen.script -> bool) -> Gen.script -> Gen.script
(** Greedy op deletion to a fixpoint; the platform is left intact. *)
