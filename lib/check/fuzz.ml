module Prng = Gripps.Prng
module I = Sched_core.Instance

type failure = {
  oracle : string;
  case : int;
  detail : string;
  repro : string option;
}

type report = {
  cases : int;
  oracles_run : (string * int) list;
  failures : failure list;
}

(* --- totality sweep --------------------------------------------------- *)

let degeneracy_equal (a : I.degeneracy) (b : I.degeneracy) = a = b

let totality p =
  let raw = Gen.raw p in
  let got =
    I.make_checked ?flow_origins:raw.Gen.flow_origins ~releases:raw.Gen.releases
      ~weights:raw.Gen.weights raw.Gen.cost
  in
  match (raw.Gen.planted, got) with
  | None, Ok _ -> Ok ()
  | None, Error d ->
    Error
      (Printf.sprintf "clean input rejected as %S" (I.degeneracy_to_string d))
  | Some d, Error d' when degeneracy_equal d d' -> Ok ()
  | Some d, Error d' ->
    Error
      (Printf.sprintf "planted %S but classified as %S" (I.degeneracy_to_string d)
         (I.degeneracy_to_string d'))
  | Some d, Ok _ ->
    Error (Printf.sprintf "planted %S went undetected" (I.degeneracy_to_string d))

(* --- artifacts -------------------------------------------------------- *)

let ensure_dir dir =
  try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()

let write_file path content = Out_channel.with_open_text path (fun oc ->
    Out_channel.output_string oc content)

let write_repro ~out_dir ~case ~oracle ~aux ~detail ~ext content =
  ensure_dir out_dir;
  let stem = Printf.sprintf "case%d-%s" case oracle in
  let artifact = Filename.concat out_dir (stem ^ ext) in
  write_file artifact content;
  write_file
    (Filename.concat out_dir (stem ^ ".sh"))
    (Printf.sprintf
       "#!/bin/sh\n# oracle %s failed: %s\nexec dlsched fuzz --replay %s --oracle %s --aux %d\n"
       oracle detail (stem ^ ext) oracle aux);
  artifact

(* --- driver ----------------------------------------------------------- *)

let still_fails outcome = match outcome with Oracles.Fail _ -> true | Oracles.Pass -> false

let detail_of = function Oracles.Fail m -> m | Oracles.Pass -> "passed after shrinking"

let run ?(out_dir = "_fuzz") ?(oracles = Oracles.all) ~seed ~cases () =
  let counts = List.map (fun o -> (Oracles.name o, ref 0)) oracles in
  let failures = ref [] in
  for case = 0 to cases - 1 do
    (* One independent stream per (seed, case): shrinking a late case never
       perturbs an earlier one, and any case replays alone. *)
    let p = Prng.create ((seed * 1_000_003) + case) in
    let inst = Gen.instance p in
    let script = Gen.script p in
    let aux = Prng.int p (1 lsl 20) in
    (match totality p with
     | Ok () -> ()
     | Error detail ->
       failures := { oracle = "totality"; case; detail; repro = None } :: !failures);
    List.iter
      (fun o ->
        incr (List.assoc (Oracles.name o) counts);
        match o with
        | Oracles.Offline _ -> (
          match Oracles.run_offline o ~aux inst with
          | Oracles.Pass -> ()
          | Oracles.Fail _ ->
            let small =
              Shrink.instance
                ~keep:(fun i -> still_fails (Oracles.run_offline o ~aux i))
                inst
            in
            let detail = detail_of (Oracles.run_offline o ~aux small) in
            let repro =
              write_repro ~out_dir ~case ~oracle:(Oracles.name o) ~aux ~detail
                ~ext:".inst"
                (Sched_core.Instance_io.to_string small)
            in
            failures :=
              { oracle = Oracles.name o; case; detail; repro = Some repro } :: !failures)
        | Oracles.Serve _ -> (
          match Oracles.run_serve o ~aux script with
          | Oracles.Pass -> ()
          | Oracles.Fail _ ->
            let small =
              Shrink.script
                ~keep:(fun s -> still_fails (Oracles.run_serve o ~aux s))
                script
            in
            let detail = detail_of (Oracles.run_serve o ~aux small) in
            let repro =
              write_repro ~out_dir ~case ~oracle:(Oracles.name o) ~aux ~detail
                ~ext:".script" (Gen.script_to_string small)
            in
            failures :=
              { oracle = Oracles.name o; case; detail; repro = Some repro } :: !failures))
      oracles
  done;
  {
    cases;
    oracles_run = List.map (fun (n, r) -> (n, !r)) counts;
    failures = List.rev !failures;
  }

let replay ~oracle ~aux ~path =
  let outcome =
    match oracle with
    | Oracles.Offline _ ->
      Oracles.run_offline oracle ~aux (Sched_core.Instance_io.load path)
    | Oracles.Serve _ ->
      Oracles.run_serve oracle ~aux
        (Gen.script_of_string (In_channel.with_open_text path In_channel.input_all))
  in
  match outcome with Oracles.Pass -> Ok () | Oracles.Fail m -> Error m
