module I = Sched_core.Instance

let drop_idx k a = Array.init (Array.length a - 1) (fun i -> if i < k then a.(i) else a.(i + 1))

let rebuild inst ~jobs ~machines =
  let releases = Array.map (fun j -> I.release inst j) jobs in
  let weights = Array.map (fun j -> I.weight inst j) jobs in
  let flow_origins = Array.map (fun j -> I.flow_origin inst j) jobs in
  let cost =
    Array.map
      (fun i -> Array.map (fun j -> I.cost inst ~machine:i ~job:j) jobs)
      machines
  in
  I.make_checked ~flow_origins ~releases ~weights cost

let instance ~keep inst0 =
  let shrunk = ref inst0 in
  let progress = ref true in
  while !progress do
    progress := false;
    let inst = !shrunk in
    let n = I.num_jobs inst and m = I.num_machines inst in
    let all_jobs = Array.init n Fun.id and all_machines = Array.init m Fun.id in
    (* Jobs first: losing a job shrinks every dimension of the LPs. *)
    let try_candidate c =
      (not !progress)
      &&
      match c with
      | Ok cand when keep cand ->
        shrunk := cand;
        progress := true;
        true
      | _ -> false
    in
    for j = 0 to n - 1 do
      ignore (try_candidate (rebuild inst ~jobs:(drop_idx j all_jobs) ~machines:all_machines))
    done;
    if not !progress then
      for i = 0 to m - 1 do
        (* [rebuild] runs the checked constructor, so a deletion stranding
           some job (its last runnable machine) is rejected, not kept. *)
        ignore
          (try_candidate (rebuild inst ~jobs:all_jobs ~machines:(drop_idx i all_machines)))
      done
  done;
  !shrunk

let script ~keep (s0 : Gen.script) =
  let shrunk = ref s0 in
  let progress = ref true in
  while !progress do
    progress := false;
    let s = !shrunk in
    let ops = Array.of_list s.Gen.ops in
    let k = Array.length ops in
    let i = ref 0 in
    while (not !progress) && !i < k do
      let cand = { s with Gen.ops = Array.to_list (drop_idx !i ops) } in
      if keep cand then begin
        shrunk := cand;
        progress := true
      end;
      incr i
    done
  done;
  !shrunk
