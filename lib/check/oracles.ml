module Rat = Numeric.Rat
module I = Sched_core.Instance
module S = Sched_core.Schedule
module MF = Sched_core.Max_flow
module E = Serve.Engine
module Snap = Serve.Snapshot

type outcome = Pass | Fail of string

type t =
  | Offline of string * (aux:int -> I.t -> outcome)
  | Serve of string * (aux:int -> Gen.script -> outcome)

let name = function Offline (n, _) | Serve (n, _) -> n

let failf fmt = Printf.ksprintf (fun s -> Fail s) fmt
let of_result = function Ok () -> Pass | Error m -> Fail m
let ( &&& ) a b = match a with Pass -> b () | Fail _ -> a

(* --- bit-identity plumbing -------------------------------------------- *)

let slices_equal a b =
  List.length a = List.length b
  && List.for_all2
       (fun (x : S.slice) (y : S.slice) ->
         x.machine = y.machine && x.job = y.job && Rat.equal x.start y.start
         && Rat.equal x.stop y.stop)
       a b

let same_maxflow a b =
  match (a, b) with
  | `Trivial _, `Trivial _ -> Pass
  | `Solved (ra : MF.result), `Solved (rb : MF.result) ->
    if not (Rat.equal ra.objective rb.objective) then
      failf "objectives differ: %s vs %s" (Rat.to_string ra.objective)
        (Rat.to_string rb.objective)
    else if not (slices_equal (S.slices ra.schedule) (S.slices rb.schedule)) then
      Fail "equal objectives but different schedules"
    else begin
      let alo, ahi = ra.search_range and blo, bhi = rb.search_range in
      if not (Rat.equal alo blo && Rat.equal ahi bhi) then
        Fail "search ranges differ"
      else Pass
    end
  | _ -> Fail "one path trivial, the other solved"

let with_variant v f =
  let saved = !Lp.Solve.variant in
  Lp.Solve.variant := v;
  Fun.protect ~finally:(fun () -> Lp.Solve.variant := saved) f

(* --- offline oracles -------------------------------------------------- *)

(* The validator itself: every solved case satisfies the paper's
   invariants as re-checked by lib/check, not just by lib/core. *)
let validator ~aux:_ inst =
  match MF.solve_total inst with
  | `Trivial sched -> of_result (Invariants.divisible sched)
  | `Solved r -> of_result (Invariants.solution ~objective:r.objective r.schedule)

let dense_vs_sparse ~aux:_ inst =
  same_maxflow
    (with_variant Lp.Solve.Dense (fun () -> MF.solve_total inst))
    (with_variant Lp.Solve.Sparse (fun () -> MF.solve_total inst))

let exact_vs_accelerated ~aux:_ inst =
  same_maxflow (MF.solve_total ~accelerate:false inst) (MF.solve_total ~accelerate:true inst)

let jobs_1_vs_4 ~aux:_ inst =
  same_maxflow
    (Par.Pool.with_jobs 1 (fun () -> MF.solve_total inst))
    (Par.Pool.with_jobs 4 (fun () -> MF.solve_total inst))

let preemptive_vs_divisible ~aux:_ inst =
  match (Sched_core.Preemptive.solve_total inst, MF.solve_total inst) with
  | `Trivial _, `Trivial _ -> Pass
  | `Solved (pr : Sched_core.Preemptive.result), `Solved (dr : MF.result) ->
    if Rat.compare pr.objective dr.objective < 0 then
      failf "preemptive optimum %s beats its divisible relaxation %s"
        (Rat.to_string pr.objective) (Rat.to_string dr.objective)
    else
      of_result (Invariants.preemptive pr.schedule)
      &&& fun () ->
      of_result (Invariants.objective_consistent ~objective:pr.objective pr.schedule)
      &&& fun () ->
      of_result (Invariants.deadlines_met ~objective:pr.objective pr.schedule)
  | _ -> Fail "preemptive and divisible disagree on triviality"

let makespan_oracle ~aux:_ inst =
  match Sched_core.Makespan.solve_total inst with
  | `Trivial _ -> Pass
  | `Solved (r : Sched_core.Makespan.result) ->
    let recomputed =
      List.fold_left
        (fun acc (s : S.slice) -> Rat.max acc s.stop)
        Rat.zero (S.slices r.schedule)
    in
    if not (Rat.equal recomputed r.makespan) then
      failf "reported makespan %s but slices end at %s" (Rat.to_string r.makespan)
        (Rat.to_string recomputed)
    else if Rat.compare r.makespan (Sched_core.Makespan.lower_bound inst) < 0 then
      Fail "makespan beats the combinatorial lower bound"
    else
      of_result (Invariants.shares_sum r.schedule)
      &&& fun () ->
      of_result (Invariants.releases_respected r.schedule)
      &&& fun () -> of_result (Invariants.machine_capacity r.schedule)

let online_policies : (module Online.Sim.POLICY) list =
  (* LP-free and deterministic: their serve-side replays are bit-stable
     and their offline comparison runs in microseconds. *)
  [ (module Online.Policies.Mct); (module Online.Policies.Fcfs);
    (module Online.Policies.Srpt) ]

let online_vs_offline ~aux:_ inst =
  let shifted_origin =
    let rec go j =
      j < I.num_jobs inst
      && (not (Rat.equal (I.flow_origin inst j) (I.release inst j)) || go (j + 1))
    in
    go 0
  in
  (* The comparison harness measures policy flow from release dates; an
     instance with earlier flow origins would compare different metrics. *)
  if I.num_jobs inst = 0 || shifted_origin then Pass
  else begin
    let report = Online.Compare.run ~policies:online_policies inst in
    let rec go = function
      | [] -> Pass
      | (e : Online.Compare.entry) :: tl ->
        if Rat.compare e.max_weighted_flow report.Online.Compare.offline_objective < 0
        then
          failf "online policy %s achieves %s, below the offline optimum %s" e.policy
            (Rat.to_string e.max_weighted_flow)
            (Rat.to_string report.Online.Compare.offline_objective)
        else go tl
    in
    go report.Online.Compare.entries
  end

(* --- serve oracles ---------------------------------------------------- *)

let fresh_dir =
  let k = ref 0 in
  fun () ->
    incr k;
    let d =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "dlsched-check-%d-%d" (Unix.getpid ()) !k)
    in
    (try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
    d

let rm_rf dir =
  if Sys.file_exists dir then begin
    Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
    Unix.rmdir dir
  end

let policy : (module Online.Sim.POLICY) = (module Online.Policies.Mct)

let apply eng counter = function
  | Gen.Submit { bank; motifs } ->
    incr counter;
    ignore
      (E.submit eng
         ~id:(Printf.sprintf "r%d" !counter)
         ~arrival:(E.now eng) ~bank ~num_motifs:motifs ())
  | Gen.Tick s -> E.run_until eng (Rat.add (E.now eng) (Rat.of_int s))
  | Gen.Fault f -> E.inject eng ~at:(E.now eng) f
  | Gen.Drain -> E.drain eng

let dump (script : Gen.script) eng =
  Snap.state_to_string ~seq:0 ~platform:script.Gen.platform (E.dump eng)

(* Live engine vs WAL-replayed engine: the same script, once uninterrupted
   and once crashed after [k] ops and resumed from snapshot + log tail,
   must end in bit-identical states — counters, review offsets, decision
   cache and all.  [aux] picks the crash point, the snapshot cadence and
   whether the decision cache is armed. *)
let wal_crash_resume ~aux (script : Gen.script) =
  let ops = script.Gen.ops in
  let cache = aux land 1 = 1 in
  let snapshot_every = 1 + (aux lsr 1 mod 3) in
  let k = aux lsr 3 mod (List.length ops + 1) in
  let oracle =
    let dir = fresh_dir () in
    Fun.protect ~finally:(fun () -> rm_rf dir) (fun () ->
        let e = E.create ~clock:(Serve.Clock.virtual_ ()) ~policy script.Gen.platform in
        let h = Snap.arm ~snapshot_every ~dir e in
        E.set_decision_cache e cache;
        let counter = ref 0 in
        List.iter (apply e counter) ops;
        Snap.close h;
        dump script e)
  in
  let crashed =
    let dir = fresh_dir () in
    Fun.protect ~finally:(fun () -> rm_rf dir) (fun () ->
        let e = E.create ~clock:(Serve.Clock.virtual_ ()) ~policy script.Gen.platform in
        let h = Snap.arm ~snapshot_every ~dir e in
        E.set_decision_cache e cache;
        let counter = ref 0 in
        let rec first i = function
          | op :: tl when i < k ->
            apply e counter op;
            first (i + 1) tl
          | rest -> rest
        in
        let rest = first 0 ops in
        Snap.close h (* the crash: the process dies with [rest] unapplied *);
        let h', e' =
          Snap.resume ~snapshot_every ~decision_cache:cache ~dir
            ~clock:(Serve.Clock.virtual_ ())
            ~policies:[ policy ] ()
        in
        (* Resuming re-admits every logged job, so the id counter must
           resume where the crash left it. *)
        let counter = ref !counter in
        List.iter (apply e' counter) rest;
        Snap.close h';
        dump script e')
  in
  if String.equal oracle crashed then Pass
  else
    failf "crash at op %d (snapshot_every=%d cache=%b) diverges from the live run" k
      snapshot_every cache

(* The zero-window admission valve must be invisible: same script, with
   and without the valve, identical final states up to the valve's own
   admission.* instruments. *)
let strip_admission text =
  let starts_with p l =
    String.length l >= String.length p && String.sub l 0 (String.length p) = p
  in
  String.split_on_char '\n' text
  |> List.filter (fun l ->
         not
           (starts_with "metrics " l (* the registry size differs by the valve's own *)
           || starts_with "checksum " l
           || starts_with "counter admission." l
           || starts_with "gauge admission." l
           || starts_with "hist admission." l))
  |> String.concat "\n"

let admission_zero_window ~aux:_ (script : Gen.script) =
  let direct =
    let e = E.create ~clock:(Serve.Clock.virtual_ ()) ~policy script.Gen.platform in
    let counter = ref 0 in
    List.iter (apply e counter) script.Gen.ops;
    dump script e
  in
  let valved =
    let e = E.create ~clock:(Serve.Clock.virtual_ ()) ~policy script.Gen.platform in
    let adm = Serve.Admission.create e in
    let counter = ref 0 in
    List.iter
      (function
        | Gen.Submit { bank; motifs } ->
          incr counter;
          (match
             Serve.Admission.submit adm
               ~id:(Printf.sprintf "r%d" !counter)
               ~bank ~num_motifs:motifs ()
           with
          | Serve.Admission.Admitted _ -> ()
          | Serve.Admission.Shed _ -> failwith "zero-window valve shed a request")
        | op -> apply e counter op)
      script.Gen.ops;
    dump script e
  in
  if String.equal (strip_admission direct) (strip_admission valved) then Pass
  else Fail "zero-window admission valve is not transparent"

(* Batching may move arrival dates, so bit-identity is out; what must hold
   is that the batched valve completes exactly the same request set. *)
let batched_vs_zero_window ~aux (script : Gen.script) =
  let window = Rat.of_ints (1 + (aux mod 5)) 10 in
  let completed cfg =
    let e = E.create ~clock:(Serve.Clock.virtual_ ()) ~policy script.Gen.platform in
    let adm = Serve.Admission.create ?config:cfg e in
    let counter = ref 0 in
    List.iter
      (function
        | Gen.Submit { bank; motifs } ->
          incr counter;
          (match
             Serve.Admission.submit adm
               ~id:(Printf.sprintf "r%d" !counter)
               ~bank ~num_motifs:motifs ()
           with
          | Serve.Admission.Admitted _ -> ()
          | Serve.Admission.Shed _ -> failwith "uncapped valve shed a request")
        | op -> apply e counter op)
      script.Gen.ops;
    (E.submitted e, E.completed e)
  in
  let s0, c0 = completed None in
  let s1, c1 =
    completed (Some { Serve.Admission.default_config with window })
  in
  if s0 <> s1 then failf "request sets differ: %d vs %d submitted" s0 s1
  else if c0 <> s0 then failf "zero-window valve completed %d of %d" c0 s0
  else if c1 <> s1 then
    failf "batched valve (window %s) completed %d of %d" (Rat.to_string window) c1 s1
  else Pass

(* --- registry --------------------------------------------------------- *)

let all =
  [ Offline ("validator", validator);
    Offline ("dense-vs-sparse", dense_vs_sparse);
    Offline ("exact-vs-accelerated", exact_vs_accelerated);
    Offline ("jobs-1-vs-4", jobs_1_vs_4);
    Offline ("preemptive-vs-divisible", preemptive_vs_divisible);
    Offline ("makespan", makespan_oracle);
    Offline ("online-vs-offline", online_vs_offline);
    Serve ("wal-crash-resume", wal_crash_resume);
    Serve ("admission-zero-window", admission_zero_window);
    Serve ("batched-vs-zero-window", batched_vs_zero_window)
  ]

let find n = List.find_opt (fun o -> name o = n) all

let guard f = match f () with o -> o | exception exn -> Fail (Printexc.to_string exn)

let run_offline o ~aux inst =
  match o with Offline (_, f) -> guard (fun () -> f ~aux inst) | Serve _ -> Pass

let run_serve o ~aux script =
  match o with Serve (_, f) -> guard (fun () -> f ~aux script) | Offline _ -> Pass
