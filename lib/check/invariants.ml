module Rat = Numeric.Rat
module I = Sched_core.Instance
module S = Sched_core.Schedule

let errf fmt = Printf.ksprintf (fun s -> Error s) fmt

let ( let* ) = Result.bind

(* Distinct slice endpoints in increasing order: the epochal intervals of
   the LP formulations.  Every slice starts and stops on an epoch, so a
   slice's overlap with an epochal interval is all-or-nothing — but the
   sweep below still computes true overlaps, so it stays correct on
   adversarially perturbed schedules whose slices straddle epochs. *)
let epochs sched =
  List.concat_map (fun (s : S.slice) -> [ s.start; s.stop ]) (S.slices sched)
  |> List.sort_uniq Rat.compare

let overlap (a, b) (s : S.slice) =
  let lo = Rat.max a s.start and hi = Rat.min b s.stop in
  if Rat.compare lo hi < 0 then Rat.sub hi lo else Rat.zero

let shares_sum sched =
  let inst = S.instance sched in
  let n = I.num_jobs inst in
  let sums = Array.make n Rat.zero in
  let bad = ref None in
  List.iter
    (fun (s : S.slice) ->
      match I.cost inst ~machine:s.machine ~job:s.job with
      | None ->
        if !bad = None then
          bad := Some (Printf.sprintf "job %d sliced on machine %d which cannot run it (c = ∞)" s.job s.machine)
      | Some c ->
        sums.(s.job) <- Rat.add sums.(s.job) (Rat.div (Rat.sub s.stop s.start) c))
    (S.slices sched);
  match !bad with
  | Some msg -> Error msg
  | None ->
    let rec go j =
      if j >= n then Ok ()
      else if not (Rat.equal sums.(j) Rat.one) then
        errf "job %d: shares sum to %s, not 1" j (Rat.to_string sums.(j))
      else go (j + 1)
    in
    go 0

let releases_respected sched =
  let inst = S.instance sched in
  let rec go = function
    | [] -> Ok ()
    | (s : S.slice) :: tl ->
      if Rat.compare s.start (I.release inst s.job) < 0 then
        errf "job %d runs at %s before its release date %s" s.job
          (Rat.to_string s.start)
          (Rat.to_string (I.release inst s.job))
      else go tl
  in
  go (S.slices sched)

(* Shared epochal sweep: for each consecutive epoch pair, charge every
   slice's overlap to [key slice] and require each key's total to stay
   within the interval length. *)
let capacity_sweep ~what ~key sched =
  let slices = S.slices sched in
  let rec pairs = function
    | a :: (b :: _ as tl) ->
      let len = Rat.sub b a in
      let tbl = Hashtbl.create 8 in
      let violated = ref None in
      List.iter
        (fun s ->
          let o = overlap (a, b) s in
          if Rat.sign o > 0 then begin
            let k = key s in
            let total = Rat.add o (Option.value (Hashtbl.find_opt tbl k) ~default:Rat.zero) in
            Hashtbl.replace tbl k total;
            if Rat.compare total len > 0 && !violated = None then
              violated :=
                Some
                  (Printf.sprintf "%s %d over-committed on [%s, %s): %s > %s" what k
                     (Rat.to_string a) (Rat.to_string b) (Rat.to_string total)
                     (Rat.to_string len))
          end)
        slices;
      (match !violated with Some msg -> Error msg | None -> pairs tl)
    | _ -> Ok ()
  in
  pairs (epochs sched)

let machine_capacity sched =
  capacity_sweep ~what:"machine" ~key:(fun (s : S.slice) -> s.machine) sched

let job_capacity sched =
  capacity_sweep ~what:"job" ~key:(fun (s : S.slice) -> s.job) sched

let completion inst sched j =
  List.fold_left
    (fun acc (s : S.slice) -> if s.job = j then Rat.max acc s.stop else acc)
    (I.release inst j) (S.slices sched)

let objective_consistent ~objective sched =
  let inst = S.instance sched in
  let achieved = ref Rat.zero in
  for j = 0 to I.num_jobs inst - 1 do
    let wf =
      Rat.mul (I.weight inst j) (Rat.sub (completion inst sched j) (I.flow_origin inst j))
    in
    achieved := Rat.max !achieved wf
  done;
  if I.num_jobs inst = 0 then Ok ()
  else if Rat.equal !achieved objective then Ok ()
  else
    errf "reported objective %s but the schedule's max weighted flow is %s"
      (Rat.to_string objective) (Rat.to_string !achieved)

let deadlines_met ~objective sched =
  let inst = S.instance sched in
  let rec go j =
    if j >= I.num_jobs inst then Ok ()
    else
      let deadline =
        Rat.add (I.flow_origin inst j) (Rat.div objective (I.weight inst j))
      in
      let c = completion inst sched j in
      if Rat.compare c deadline > 0 then
        errf "job %d completes at %s past its deadline %s = o_j + F/w_j" j
          (Rat.to_string c) (Rat.to_string deadline)
      else go (j + 1)
  in
  go 0

let divisible sched =
  let* () = shares_sum sched in
  let* () = releases_respected sched in
  machine_capacity sched

let preemptive sched =
  let* () = divisible sched in
  job_capacity sched

let solution ~objective sched =
  let* () = divisible sched in
  let* () = objective_consistent ~objective sched in
  deadlines_met ~objective sched
