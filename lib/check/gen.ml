module Rat = Numeric.Rat
module Prng = Gripps.Prng
module W = Gripps.Workload
module I = Sched_core.Instance

(* Boundary pools.  Deliberately tiny and colliding: equal release dates,
   repeated costs and simple ratios are exactly where milestone ties,
   degenerate LP bases and epochal-interval edge cases live. *)
let release_pool =
  [| Rat.zero; Rat.zero; Rat.one; Rat.of_int 2; Rat.of_int 2; Rat.of_ints 5 2;
     Rat.of_int 3; Rat.of_int 10 |]

let weight_pool =
  [| Rat.one; Rat.one; Rat.of_ints 1 2; Rat.of_int 2; Rat.of_int 3; Rat.of_ints 1 3 |]

let cost_pool =
  [| Rat.one; Rat.of_ints 1 2; Rat.of_int 2; Rat.of_int 3; Rat.of_ints 7 2;
     Rat.of_int 5; Rat.of_int 10 |]

let instance p =
  let m = 1 + Prng.int p 3 in
  let n = if Prng.int p 20 = 0 then 0 else 1 + Prng.int p 5 in
  let releases = Array.init n (fun _ -> Prng.pick p release_pool) in
  let weights = Array.init n (fun _ -> Prng.pick p weight_pool) in
  (* Occasionally measure flow from before the release date, the online
     re-optimization situation (Instance.mli): deadlines move, releases
     don't. *)
  let flow_origins =
    if n > 0 && Prng.int p 4 = 0 then
      Some
        (Array.map
           (fun r -> if Prng.bool p then Rat.div_int r 2 else r)
           releases)
    else None
  in
  let cost =
    Array.init m (fun _ ->
        Array.init n (fun _ ->
            if Prng.int p 10 < 3 then None else Some (Prng.pick p cost_pool)))
  in
  (* Every job must be runnable somewhere; repair all-∞ columns. *)
  for j = 0 to n - 1 do
    let runnable = ref false in
    for i = 0 to m - 1 do
      if cost.(i).(j) <> None then runnable := true
    done;
    if not !runnable then cost.(Prng.int p m).(j) <- Some (Prng.pick p cost_pool)
  done;
  I.make ?flow_origins ~releases ~weights cost

(* --- degenerate raw inputs -------------------------------------------- *)

type raw = {
  releases : Rat.t array;
  weights : Rat.t array;
  flow_origins : Rat.t array option;
  cost : Rat.t option array array;
  planted : I.degeneracy option;
}

let raw p =
  let m = 1 + Prng.int p 3 in
  let n = 1 + Prng.int p 4 in
  let releases = Array.init n (fun _ -> Prng.pick p release_pool) in
  let weights = Array.init n (fun _ -> Prng.pick p weight_pool) in
  let cost = Array.init m (fun _ -> Array.init n (fun _ -> Some (Prng.pick p cost_pool))) in
  let base = { releases; weights; flow_origins = None; cost; planted = None } in
  if Prng.int p 3 = 0 then base
  else
    let j = Prng.int p n in
    match Prng.int p 7 with
    | 0 -> { base with cost = [||]; planted = Some I.No_machines }
    | 1 ->
      Array.iter (fun row -> row.(j) <- None) cost;
      { base with planted = Some (I.Unrunnable_job j) }
    | 2 ->
      weights.(j) <- (if Prng.bool p then Rat.zero else Rat.of_int (-1));
      { base with planted = Some (I.Nonpositive_weight j) }
    | 3 ->
      releases.(j) <- Rat.of_int (-1 - Prng.int p 3);
      { base with planted = Some (I.Negative_release j) }
    | 4 ->
      let origins = Array.copy releases in
      origins.(j) <-
        (if Prng.bool p then Rat.add releases.(j) Rat.one else Rat.of_int (-1));
      { base with flow_origins = Some origins; planted = Some (I.Bad_flow_origin j) }
    | 5 ->
      let i = Prng.int p m in
      cost.(i).(j) <- Some (if Prng.bool p then Rat.zero else Rat.of_int (-2));
      { base with planted = Some (I.Nonpositive_cost (i, j)) }
    | _ ->
      { base with
        weights = Array.sub weights 0 (n - 1);
        planted = Some (I.Shape_mismatch "weights")
      }

(* --- serve scripts ---------------------------------------------------- *)

type op =
  | Submit of { bank : int; motifs : int }
  | Tick of int
  | Fault of Serve.Trace.fault
  | Drain

type script = { platform : W.platform; ops : op list }

let speed_pool =
  [| Rat.one; Rat.one; Rat.of_ints 3 2; Rat.of_int 2; Rat.of_ints 1 2 |]

let bank_size_pool = [| 100; 380; 1000 |]

let script p =
  let m = 1 + Prng.int p 3 in
  let b = 1 + Prng.int p 2 in
  let speeds = Array.init m (fun _ -> Prng.pick p speed_pool) in
  let bank_sizes = Array.init b (fun _ -> Prng.pick p bank_size_pool) in
  let has_bank = Array.init m (fun _ -> Array.init b (fun _ -> Prng.int p 10 < 7)) in
  for k = 0 to b - 1 do
    let held = ref false in
    for i = 0 to m - 1 do
      if has_bank.(i).(k) then held := true
    done;
    if not !held then has_bank.(Prng.int p m).(k) <- true
  done;
  let platform = { W.speeds; bank_sizes; has_bank } in
  let nops = 3 + Prng.int p 10 in
  let down = ref [] in
  let ops = ref [] in
  for _ = 1 to nops do
    let roll = Prng.int p 10 in
    if roll < 5 then
      ops := Submit { bank = Prng.int p b; motifs = 1 + Prng.int p 30 } :: !ops
    else if roll < 8 || m = 1 then ops := Tick (1 + Prng.int p 5) :: !ops
    else if !down <> [] && Prng.bool p then begin
      let i = List.nth !down (Prng.int p (List.length !down)) in
      down := List.filter (( <> ) i) !down;
      ops := Fault (Serve.Trace.Recover i) :: !ops
    end
    else begin
      let i = Prng.int p m in
      if not (List.mem i !down) then begin
        down := i :: !down;
        ops := Fault (Serve.Trace.Fail i) :: !ops
      end
    end
  done;
  (* Recover everything before the final drain so no job starves forever
     and both engine configurations complete the same request set. *)
  List.iter (fun i -> ops := Fault (Serve.Trace.Recover i) :: !ops) !down;
  ops := Drain :: !ops;
  { platform; ops = List.rev !ops }

(* --- script text form ------------------------------------------------- *)

let script_to_string s =
  let b = Buffer.create 256 in
  let line fmt = Printf.ksprintf (fun l -> Buffer.add_string b (l ^ "\n")) fmt in
  let m = Array.length s.platform.W.speeds in
  let nb = Array.length s.platform.W.bank_sizes in
  line "script v1";
  line "machines %d" m;
  line "banks %d" nb;
  Array.iteri (fun i r -> line "speed %d %s" i (Rat.to_string r)) s.platform.W.speeds;
  Array.iteri (fun k n -> line "bank %d %d" k n) s.platform.W.bank_sizes;
  for i = 0 to m - 1 do
    for k = 0 to nb - 1 do
      if s.platform.W.has_bank.(i).(k) then line "holds %d %d" i k
    done
  done;
  List.iter
    (function
      | Submit { bank; motifs } -> line "op submit %d %d" bank motifs
      | Tick s -> line "op tick %d" s
      | Fault (Serve.Trace.Fail i) -> line "op fail %d" i
      | Fault (Serve.Trace.Recover i) -> line "op recover %d" i
      | Drain -> line "op drain")
    s.ops;
  Buffer.contents b

let script_of_string text =
  let fail fmt = Printf.ksprintf (fun s -> invalid_arg ("Gen.script_of_string: " ^ s)) fmt in
  let lines =
    String.split_on_char '\n' text
    |> List.map String.trim
    |> List.filter (fun l -> l <> "" && l.[0] <> '#')
  in
  let int s = match int_of_string_opt s with Some n -> n | None -> fail "bad integer %S" s in
  let rat s =
    match Rat.of_string s with r -> r | exception _ -> fail "bad rational %S" s
  in
  match lines with
  | "script v1" :: rest ->
    let m = ref 0 and nb = ref 0 in
    let speeds = ref [||] and bank_sizes = ref [||] and has_bank = ref [||] in
    let ops = ref [] in
    List.iter
      (fun l ->
        match String.split_on_char ' ' l |> List.filter (fun s -> s <> "") with
        | [ "machines"; n ] ->
          m := int n;
          if !m <= 0 then fail "machines must be positive";
          speeds := Array.make !m Rat.one
        | [ "banks"; n ] ->
          nb := int n;
          if !nb <= 0 then fail "banks must be positive";
          bank_sizes := Array.make !nb 1;
          has_bank := Array.init (max 1 !m) (fun _ -> Array.make !nb false)
        | [ "speed"; i; r ] ->
          let i = int i in
          if i < 0 || i >= !m then fail "speed index %d out of range" i;
          !speeds.(i) <- rat r
        | [ "bank"; k; n ] ->
          let k = int k in
          if k < 0 || k >= !nb then fail "bank index %d out of range" k;
          !bank_sizes.(k) <- int n
        | [ "holds"; i; k ] ->
          let i = int i and k = int k in
          if i < 0 || i >= !m then fail "holds machine %d out of range" i;
          if k < 0 || k >= !nb then fail "holds bank %d out of range" k;
          !has_bank.(i).(k) <- true
        | [ "op"; "submit"; bank; motifs ] ->
          ops := Submit { bank = int bank; motifs = int motifs } :: !ops
        | [ "op"; "tick"; s ] -> ops := Tick (int s) :: !ops
        | [ "op"; "fail"; i ] -> ops := Fault (Serve.Trace.Fail (int i)) :: !ops
        | [ "op"; "recover"; i ] -> ops := Fault (Serve.Trace.Recover (int i)) :: !ops
        | [ "op"; "drain" ] -> ops := Drain :: !ops
        | _ -> fail "unrecognized line %S" l)
      rest;
    if !m = 0 || !nb = 0 then fail "missing machines/banks header";
    { platform = { W.speeds = !speeds; bank_sizes = !bank_sizes; has_bank = !has_bank };
      ops = List.rev !ops
    }
  | _ -> fail "missing script v1 header"
