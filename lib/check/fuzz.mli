(** The fuzzing driver behind [dlsched fuzz].

    Each case derives a fresh PRNG from [(seed, case)], generates one
    offline instance, one degenerate raw input and one serve script, and
    runs the whole oracle matrix on them.  A failing case is shrunk
    ({!Shrink}) against the oracle that rejected it and written to
    [out_dir] as a replayable artifact: the shrunk instance or script plus
    a [.sh] file holding the [dlsched fuzz --replay] invocation that
    reproduces the failure. *)

type failure = {
  oracle : string;
  case : int;  (** case index within the run *)
  detail : string;  (** the oracle's message, after shrinking *)
  repro : string option;  (** path of the written artifact, if any *)
}

type report = {
  cases : int;
  oracles_run : (string * int) list;  (** oracle name, cases executed *)
  failures : failure list;
}

val run :
  ?out_dir:string ->
  ?oracles:Oracles.t list ->
  seed:int ->
  cases:int ->
  unit ->
  report
(** [out_dir] defaults to ["_fuzz"]; it is created lazily, only when a
    failure needs writing.  [oracles] defaults to {!Oracles.all}. *)

val replay : oracle:Oracles.t -> aux:int -> path:string -> (unit, string) result
(** Re-run one oracle on a saved artifact: an instance file
    ({!Sched_core.Instance_io}) for an offline oracle, a script file
    ({!Gen.script_of_string}) for a serve oracle.  [Ok ()] means the case
    passes now. *)

val totality : Gripps.Prng.t -> (unit, string) result
(** One totality case: a degenerate raw input must be classified by
    {!Sched_core.Instance.make_checked} exactly as planted, and the
    solvers' [solve_total] must answer every well-formed draw without
    raising. *)
