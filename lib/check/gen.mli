(** Seeded adversarial generators for the correctness harness.

    Everything is a deterministic function of the given {!Gripps.Prng}
    state, so a seed pins a whole fuzzing run bit-for-bit.  Values are
    drawn from small boundary pools on purpose: release-date collisions,
    repeated costs, [+∞] patterns and degenerate edges are where the
    milestone and LP machinery earns its keep, and tiny sizes keep the
    exact solvers fast enough for hundreds of cases per CI run. *)

module Rat = Numeric.Rat
module I = Sched_core.Instance

val instance : Gripps.Prng.t -> I.t
(** A well-formed instance: 0–5 jobs (0 rarely, exercising the [`Trivial]
    paths) on 1–3 machines, releases and costs from colliding pools, each
    cost infinite with positive probability but every job runnable
    somewhere. *)

(** {1 Degenerate raw inputs}

    [raw] draws the arrays of a would-be instance {e before} validation,
    planting at most one deliberate degeneracy; {!Gen.planted} names it.
    The totality oracle feeds these to {!I.make_checked} and demands the
    planted defect be classified, not crashed on. *)

type raw = {
  releases : Rat.t array;
  weights : Rat.t array;
  flow_origins : Rat.t array option;
  cost : Rat.t option array array;
  planted : I.degeneracy option;  (** the defect planted, if any *)
}

val raw : Gripps.Prng.t -> raw

(** {1 Serve scripts}

    A script drives a live engine through interleaved submissions, clock
    advances, faults and drains — the serve-path oracles run one script
    through two engine configurations and compare final states. *)

type op =
  | Submit of { bank : int; motifs : int }  (** submit at the current date *)
  | Tick of int  (** advance the virtual clock by this many seconds *)
  | Fault of Serve.Trace.fault
  | Drain

type script = { platform : Gripps.Workload.platform; ops : op list }

val script : Gripps.Prng.t -> script
(** 1–3 machines, 1–2 banks (every bank held somewhere), 3–12 ops ending
    in {!Drain}; faults appear only on multi-machine platforms and every
    [Fail] is eventually paired with a [Recover] so drains terminate. *)

val script_to_string : script -> string
(** Line-oriented text form (a [dlsched fuzz --replay] repro artifact);
    round-trips through {!script_of_string}. *)

val script_of_string : string -> script
(** @raise Invalid_argument on a malformed script file. *)
