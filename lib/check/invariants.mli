(** The paper's schedule invariants, checked directly and independently.

    {!Sched_core.Schedule} has its own validators; this module deliberately
    re-implements the checks with a different algorithm (an epochal-interval
    sweep over all slice endpoints, the shape of LP systems (1)/(3)/(5),
    instead of sorted-adjacency scans) so that a bug in the production
    validator and a bug in the checker are unlikely to coincide.  All
    arithmetic is exact.

    Each invariant is exposed on its own so the qcheck perturbation tests
    can show that each one, when deliberately violated, is caught. *)

module Rat = Numeric.Rat
module S = Sched_core.Schedule

val shares_sum : S.t -> (unit, string) result
(** Per-job shares sum to 1 exactly: [Σ_i (stop−start)/c_{i,j} = 1] over
    the job's slices, every slice on a machine that can run the job. *)

val releases_respected : S.t -> (unit, string) result
(** No slice starts before its job's release date. *)

val machine_capacity : S.t -> (unit, string) result
(** No machine is over-committed on any epochal interval: within each
    interval delimited by consecutive slice endpoints, the total time a
    machine spends on slices is at most the interval's length. *)

val job_capacity : S.t -> (unit, string) result
(** The preemptive model's extra constraint (LP (5b)): within each epochal
    interval, one job occupies at most the interval's length summed over
    all machines — it never runs on two machines simultaneously. *)

val objective_consistent : objective:Rat.t -> S.t -> (unit, string) result
(** The reported objective equals the schedule's recomputed maximum
    weighted flow [max_j w_j (C_j − o_j)] (flow measured from the job's
    flow origin), exactly. *)

val deadlines_met : objective:Rat.t -> S.t -> (unit, string) result
(** Every job completes by its parametric deadline
    [d̄_j(F) = o_j + F/w_j] (Section 4.2). *)

val divisible : S.t -> (unit, string) result
(** {!shares_sum}, {!releases_respected} and {!machine_capacity}. *)

val preemptive : S.t -> (unit, string) result
(** {!divisible} plus {!job_capacity}. *)

val solution : objective:Rat.t -> S.t -> (unit, string) result
(** {!divisible}, {!objective_consistent} and {!deadlines_met}: what a
    claimed optimal divisible solution must satisfy. *)
